package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aiac/internal/engine"
	"aiac/internal/experiments"
	"aiac/internal/metrics"
	"aiac/internal/report"
	"aiac/internal/trace"
)

// The scheduler multiplexes submitted runs over a bounded worker pool
// (experiments.ServePool). Queuing is fair per tenant: each tenant has a
// FIFO queue and a round-robin cursor walks the tenants, so a tenant
// dumping 10k runs cannot starve one submitting a single solve. Two quota
// knobs bound a tenant's footprint: MaxQueuedPerTenant rejects submissions
// at the door (HTTP 429), MaxRunningPerTenant caps in-flight runs (the
// cursor skips saturated tenants; their queue drains as their runs finish).

// SchedulerConfig tunes the run scheduler.
type SchedulerConfig struct {
	// Workers is the solver pool size (<= 0: the experiments default,
	// GOMAXPROCS).
	Workers int
	// MaxQueuedPerTenant rejects a submission when the tenant already has
	// this many queued runs (<= 0: unlimited).
	MaxQueuedPerTenant int
	// MaxRunningPerTenant caps a tenant's concurrently running solves
	// (<= 0: unlimited).
	MaxRunningPerTenant int
}

// ErrQueueFull is returned by Submit when the tenant's queue quota is hit.
type ErrQueueFull struct{ Tenant string }

func (e ErrQueueFull) Error() string {
	return fmt.Sprintf("obs: tenant %q queue is full", e.Tenant)
}

type job struct {
	id        string
	tenant    string
	spec      RunSpec
	cfg       engine.Config
	sink      *metrics.Sink
	cancel    atomic.Bool
	stream    *liveStream
	submitted time.Time
}

// Scheduler runs submitted specs on a worker pool, persisting lifecycle
// and artifacts through a Registry.
type Scheduler struct {
	reg *Registry
	cfg SchedulerConfig

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*job // per-tenant FIFO
	ring    []string          // round-robin tenant order (insertion order)
	cursor  int
	queued  map[string]int // per-tenant queued count
	running map[string]int // per-tenant running count
	jobs    map[string]*job
	closed  bool

	// Service-level telemetry, scraped by the control plane's /metrics
	// endpoint. sheds counts 429-style quota rejections; submitToStart is
	// the queue-wait latency (Submit accept to solver start) in seconds.
	sheds         atomic.Uint64
	startedTotal  atomic.Uint64
	submitToStart metrics.Histogram

	wait func()
}

// NewScheduler starts the worker pool.
func NewScheduler(reg *Registry, cfg SchedulerConfig) *Scheduler {
	s := &Scheduler{
		reg:     reg,
		cfg:     cfg,
		queues:  map[string][]*job{},
		queued:  map[string]int{},
		running: map[string]int{},
		jobs:    map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.wait = experiments.ServePool(cfg.Workers, s.next)
	return s
}

// Close stops the pool after the running jobs finish; queued jobs stay
// queued on disk (a restart marks them lost). It does not cancel running
// solves — the service cancels them first when shutting down hard.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wait()
}

// Submit validates the spec, persists the queued record and enqueues the
// run. It returns the new run ID.
func (s *Scheduler) Submit(spec RunSpec) (string, error) {
	spec = spec.withDefaults()
	cfg, sink, err := spec.BuildConfig()
	if err != nil {
		return "", err
	}
	j := &job{
		tenant: spec.Tenant,
		spec:   spec,
		cfg:    cfg,
		sink:   sink,
		stream: newLiveStream(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("obs: scheduler is shut down")
	}
	if s.cfg.MaxQueuedPerTenant > 0 && s.queued[spec.Tenant] >= s.cfg.MaxQueuedPerTenant {
		s.mu.Unlock()
		s.sheds.Add(1)
		return "", ErrQueueFull{Tenant: spec.Tenant}
	}
	// Reserve the quota slot and allocate the ID inside the lock (IDs are
	// monotonic, so submission order and ID order agree even under
	// concurrent submitters), but enqueue only after the queued record is
	// durable — a worker must never pick up a run the registry cannot
	// report.
	j.id = NewID(time.Now())
	j.submitted = time.Now()
	s.queued[spec.Tenant]++
	s.jobs[j.id] = j
	s.mu.Unlock()

	rec := &RunRecord{
		ID: j.id, Tenant: spec.Tenant, State: StateQueued,
		SubmittedAt: time.Now().UTC().Format(time.RFC3339Nano),
		Spec:        spec,
	}
	if err := s.reg.Put(rec); err != nil {
		s.mu.Lock()
		s.queued[spec.Tenant]--
		delete(s.jobs, j.id)
		s.mu.Unlock()
		j.stream.close()
		return "", err
	}

	s.mu.Lock()
	if _, ok := s.queues[spec.Tenant]; !ok {
		s.ring = append(s.ring, spec.Tenant)
	}
	s.queues[spec.Tenant] = append(s.queues[spec.Tenant], j)
	s.cond.Signal()
	s.mu.Unlock()
	return j.id, nil
}

// remove drops a queued job (registry record untouched). Returns the job
// if it was still queued.
func (s *Scheduler) remove(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	q := s.queues[j.tenant]
	for i, qj := range q {
		if qj == j {
			s.queues[j.tenant] = append(q[:i], q[i+1:]...)
			s.queued[j.tenant]--
			delete(s.jobs, id)
			return j
		}
	}
	return nil // already running
}

// Cancel requests cancellation of a run. A queued run is dequeued and
// marked canceled immediately; a running run gets its cancel flag raised
// and reaches a terminal state when the solver notices (between events —
// promptly). Returns false if the run is unknown or already terminal.
func (s *Scheduler) Cancel(id string) bool {
	if j := s.remove(id); j != nil {
		if rec, ok := s.reg.Get(id); ok {
			rec.State = StateCanceled
			rec.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
			s.reg.Put(&rec)
		}
		j.stream.close()
		return true
	}
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel.Store(true)
	return true
}

// Stream returns the live frame stream of a queued or running run, nil if
// the run is unknown or already finished (finished runs replay from disk).
func (s *Scheduler) Stream(id string) *liveStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.stream
	}
	return nil
}

// QueueDepths snapshots per-tenant queued counts (for /readyz detail and
// tests).
func (s *Scheduler) QueueDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.queued))
	for t, n := range s.queued {
		if n > 0 {
			out[t] = n
		}
	}
	return out
}

// RunningCounts snapshots per-tenant running counts.
func (s *Scheduler) RunningCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.running))
	for t, n := range s.running {
		if n > 0 {
			out[t] = n
		}
	}
	return out
}

// Sheds returns the number of submissions rejected at the queue quota
// (surfaced to clients as HTTP 429).
func (s *Scheduler) Sheds() uint64 { return s.sheds.Load() }

// WritePrometheus writes the scheduler's service-level metrics in the
// Prometheus text exposition format: per-tenant queue depth and running
// count, total quota sheds, started-run count and the submit-to-start
// latency histogram. Tenant label order is sorted, so scrapes are
// deterministic in the scheduler state.
func (s *Scheduler) WritePrometheus(w io.Writer) error {
	queued := s.QueueDepths()
	running := s.RunningCounts()
	pw := metrics.NewPromWriter(w)

	tenants := func(m map[string]int) []string {
		ts := make([]string, 0, len(m))
		for t := range m {
			ts = append(ts, t)
		}
		sort.Strings(ts)
		return ts
	}
	pw.Head("aiac_sched_queue_depth", "gauge", "Queued runs per tenant.")
	for _, t := range tenants(queued) {
		pw.Val("aiac_sched_queue_depth", metrics.PromLabel("tenant", t), float64(queued[t]))
	}
	pw.Head("aiac_sched_running", "gauge", "Running solves per tenant.")
	for _, t := range tenants(running) {
		pw.Val("aiac_sched_running", metrics.PromLabel("tenant", t), float64(running[t]))
	}
	pw.Head("aiac_sched_sheds_total", "counter", "Submissions rejected at the per-tenant queue quota (HTTP 429).")
	pw.Val("aiac_sched_sheds_total", "", float64(s.sheds.Load()))
	pw.Head("aiac_sched_started_total", "counter", "Runs handed to the solver pool.")
	pw.Val("aiac_sched_started_total", "", float64(s.startedTotal.Load()))
	pw.Head("aiac_sched_submit_to_start_seconds", "histogram", "Queue wait from accepted submission to solver start.")
	pw.Hist("aiac_sched_submit_to_start_seconds", "", s.submitToStart.Snapshot())
	return pw.Err()
}

// next is the ServePool feed: block until a job is runnable under the
// fairness policy, then hand out its execution closure.
func (s *Scheduler) next() (func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, false
		}
		if j := s.dequeueLocked(); j != nil {
			s.running[j.tenant]++
			return func() { s.execute(j) }, true
		}
		s.cond.Wait()
	}
}

// dequeueLocked walks the tenant ring from the cursor and pops the head of
// the first non-empty queue whose tenant has running capacity. Advancing
// the cursor past the chosen tenant gives round-robin fairness.
func (s *Scheduler) dequeueLocked() *job {
	n := len(s.ring)
	for k := 0; k < n; k++ {
		t := s.ring[(s.cursor+k)%n]
		if len(s.queues[t]) == 0 {
			continue
		}
		if s.cfg.MaxRunningPerTenant > 0 && s.running[t] >= s.cfg.MaxRunningPerTenant {
			continue
		}
		j := s.queues[t][0]
		s.queues[t] = s.queues[t][1:]
		s.queued[t]--
		s.cursor = (s.cursor + k + 1) % n
		return j
	}
	return nil
}

// execute runs one job to a terminal state: record running, solve with the
// live stream attached, write artifacts, record the outcome, close the
// stream, release the tenant slot.
func (s *Scheduler) execute(j *job) {
	defer func() {
		s.mu.Lock()
		s.running[j.tenant]--
		delete(s.jobs, j.id)
		s.cond.Broadcast() // a tenant slot freed: retry skipped queues
		s.mu.Unlock()
	}()

	s.startedTotal.Add(1)
	s.submitToStart.Observe(time.Since(j.submitted).Seconds())

	rec, ok := s.reg.Get(j.id)
	if !ok {
		j.stream.close()
		return
	}
	rec.State = StateRunning
	rec.StartedAt = time.Now().UTC().Format(time.RFC3339Nano)
	s.reg.Put(&rec)

	j.sink.Listener = &streamListener{sink: j.sink, stream: j.stream}
	j.cfg.Metrics = j.sink
	j.cfg.Cancel = j.cancel.Load
	var tlog *trace.Log
	if j.spec.Trace {
		tlog = &trace.Log{}
		if j.spec.TraceCap > 0 {
			tlog.SetCap(j.spec.TraceCap)
		}
		j.cfg.Trace = tlog
	}

	res, err := func() (res *engine.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("solver panic: %v", r)
			}
		}()
		return engine.Run(j.cfg)
	}()

	rec.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
	switch {
	case err != nil:
		rec.State = StateFailed
		rec.Error = err.Error()
	case res.Canceled:
		rec.State = StateCanceled
	default:
		rec.State = StateDone
	}
	if err == nil {
		run := j.sink.Snapshot()
		rec.Outcome = run.Manifest.Outcome
		if werr := writeArtifacts(s.reg.Dir(j.id), run, tlog); werr != nil {
			rec.State = StateFailed
			rec.Error = werr.Error()
		}
		rec.Artifacts = ScanArtifacts(s.reg.Dir(j.id))
		// Seal the live stream with the canonical tail so followers see
		// the same closing frames a replay would. The manifest is re-sent
		// because the opening copy (captured at Start) predates the sealed
		// outcome; accumulators keep the last manifest seen.
		j.stream.append(report.ManifestFrame(run.Manifest))
		j.stream.append(report.RuntimeFrame(run))
		j.stream.append(report.PhaseFrame(metrics.PhaseDone))
	}
	s.reg.Put(&rec)
	j.stream.close()
}

// writeArtifacts exports the run's telemetry, rendered dashboard and (when
// traced) execution trace into its registry directory.
func writeArtifacts(dir string, run *metrics.Run, tlog *trace.Log) error {
	f, err := os.Create(filepath.Join(dir, "metrics.jsonl"))
	if err != nil {
		return err
	}
	if err := run.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if tlog != nil {
		tf, err := os.Create(filepath.Join(dir, "trace.csv"))
		if err != nil {
			return err
		}
		if err := tlog.WriteCSV(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	return os.WriteFile(filepath.Join(dir, "report.txt"),
		[]byte(report.Render(run, report.Options{})), 0o644)
}

// streamListener adapts metrics.Sink's live hooks to SSE frames. The first
// frame (on the run's Start) is the manifest echo, so a follower attached
// before the run starts sees the same opening a replay produces.
type streamListener struct {
	sink   *metrics.Sink
	stream *liveStream
}

func (l *streamListener) LivePhase(phase string) {
	if phase == metrics.PhaseRunning {
		l.stream.append(report.ManifestFrame(l.sink.ManifestSnapshot()))
	}
	l.stream.append(report.PhaseFrame(phase))
}

func (l *streamListener) LiveSample(node int, sm metrics.NodeSample) {
	l.stream.append(report.SampleFrame(node, sm))
}

func (l *streamListener) LiveEvent(ev metrics.Event) {
	l.stream.append(report.EventFrame(ev))
}

// liveStream is a grow-only frame buffer with change notification: SSE
// handlers replay frames[i:] and wait for more until closed. Appends come
// from solver goroutines (concurrent under rtime and the parallel vtime
// scheduler), reads from HTTP handlers.
type liveStream struct {
	mu     sync.Mutex
	frames []report.Frame
	closed bool
	subs   map[chan struct{}]struct{}
}

func newLiveStream() *liveStream {
	return &liveStream{subs: map[chan struct{}]struct{}{}}
}

func (ls *liveStream) append(f report.Frame) {
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		return
	}
	ls.frames = append(ls.frames, f)
	ls.notifyLocked()
	ls.mu.Unlock()
}

func (ls *liveStream) close() {
	ls.mu.Lock()
	ls.closed = true
	ls.notifyLocked()
	ls.mu.Unlock()
}

func (ls *liveStream) notifyLocked() {
	for ch := range ls.subs {
		select {
		case ch <- struct{}{}:
		default: // already pending
		}
	}
}

// subscribe registers a wakeup channel; call unsubscribe when done.
func (ls *liveStream) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	ls.mu.Lock()
	ls.subs[ch] = struct{}{}
	ls.mu.Unlock()
	return ch
}

func (ls *liveStream) unsubscribe(ch chan struct{}) {
	ls.mu.Lock()
	delete(ls.subs, ch)
	ls.mu.Unlock()
}

// snapshot returns frames[from:] and whether the stream is closed.
func (ls *liveStream) snapshot(from int) ([]report.Frame, bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if from >= len(ls.frames) {
		return nil, ls.closed
	}
	return ls.frames[from:len(ls.frames):len(ls.frames)], ls.closed
}
