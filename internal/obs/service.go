package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"aiac/internal/report"
)

// Service is the solver-as-a-service control plane: a run registry plus a
// fair-queuing scheduler behind an HTTP API.
//
//	POST   /runs             submit a RunSpec, returns {"id": "<ULID>"}
//	GET    /runs             list runs (?tenant=, ?state= filters)
//	GET    /runs/{id}        one run's record
//	DELETE /runs/{id}        cancel a queued or running run
//	GET    /runs/{id}/events live/replayed dashboard frames over SSE
//	GET    /runs/{id}/report the rendered ASCII dashboard
//	GET    /healthz          liveness: process is up
//	GET    /readyz           readiness: registry scanned, scheduler accepting
type Service struct {
	reg   *Registry
	sched *Scheduler
	ready atomic.Bool
}

// ServiceConfig configures NewService.
type ServiceConfig struct {
	// Root is the registry directory (required).
	Root      string
	Scheduler SchedulerConfig
}

// NewService opens (and rescans) the registry and starts the scheduler.
func NewService(cfg ServiceConfig) (*Service, error) {
	reg, err := OpenRegistry(cfg.Root)
	if err != nil {
		return nil, err
	}
	s := &Service{reg: reg, sched: NewScheduler(reg, cfg.Scheduler)}
	s.ready.Store(true)
	return s, nil
}

// Registry exposes the service's run registry (tests, embedders).
func (s *Service) Registry() *Registry { return s.reg }

// Scheduler exposes the service's scheduler.
func (s *Service) Scheduler() *Scheduler { return s.sched }

// Close drains the worker pool (running solves finish; queued runs stay on
// disk and are marked lost on the next start).
func (s *Service) Close() {
	s.ready.Store(false)
	s.sched.Close()
}

// Register installs the control-plane routes on mux.
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":  true,
		"queued": s.sched.QueueDepths(),
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	id, err := s.sched.Submit(spec)
	if err != nil {
		var full ErrQueueFull
		if errors.As(err, &full) {
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	state := RunState(r.URL.Query().Get("state"))
	writeJSON(w, http.StatusOK, s.reg.List(tenant, state))
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	if rec.State.Terminal() {
		writeError(w, http.StatusConflict, "run is already %s", rec.State)
		return
	}
	if !s.sched.Cancel(id) {
		// Lost the race with completion.
		writeError(w, http.StatusConflict, "run just finished")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": "canceling"})
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	b, err := os.ReadFile(filepath.Join(s.reg.Dir(id), "report.txt"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no report for run in state %s", rec.State)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(b)
}

// handleTrace serves a run's execution trace (the trace.csv sidecar — for
// dist runs, the federated cross-process stream). 404s distinguish an
// unknown run from an untraced or unfinished one.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	b, err := os.ReadFile(filepath.Join(s.reg.Dir(id), "trace.csv"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no trace for run in state %s (submit with \"trace\": true)", rec.State)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Write(b)
}

// handleMetrics exposes the control plane's own service metrics (scheduler
// queue depths, running counts, sheds, submit-to-start latency) in the
// Prometheus text format. This is the service-level scrape; per-run solver
// metrics live on each run's artifacts.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sched.WritePrometheus(w)
}

// handleEvents streams a run's dashboard frames as Server-Sent Events. A
// finished run replays its stored telemetry through report.Stream — a pure
// function of the artifact, so the bytes are deterministic. A queued or
// running run streams the live buffer as telemetry arrives and ends when
// the run reaches a terminal state.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}

	ls := s.sched.Stream(id)
	if ls == nil {
		// Terminal: canonical replay from the stored artifact.
		run, err := s.reg.LoadRun(id)
		if err != nil {
			writeError(w, http.StatusNotFound, "run %s has no telemetry (state %s)", id, rec.State)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		report.WriteSSEStream(w, report.Stream(run))
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fl, _ := w.(http.Flusher)
	notify := ls.subscribe()
	defer ls.unsubscribe(notify)

	sent := 0
	for {
		frames, closed := ls.snapshot(sent)
		for _, f := range frames {
			if err := report.WriteSSE(w, f); err != nil {
				return
			}
		}
		sent += len(frames)
		if len(frames) > 0 && fl != nil {
			fl.Flush()
		}
		if closed {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-time.After(15 * time.Second):
			// keepalive comment so idle proxies keep the stream open
			fmt.Fprint(w, ": keepalive\n\n")
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// ServeService binds addr and serves the control plane (plus pprof) in the
// background, readiness reported only after the listener is bound: a
// 200 /readyz implies POST /runs will be accepted.
func ServeService(addr string, svc *Service) (*Server, error) {
	mux := http.NewServeMux()
	svc.Register(mux)
	registerPprof(mux)
	return serveMux(addr, mux)
}
