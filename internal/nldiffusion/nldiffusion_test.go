package nldiffusion

import (
	"math"
	"testing"

	"aiac/internal/iterative"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, NewtonTol: 1e-10, MaxNewton: 10},
		{N: 5, NewtonTol: 0, MaxNewton: 10},
		{N: 5, NewtonTol: 1e-10, MaxNewton: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestProblemInvariants(t *testing.T) {
	pr := New(DefaultParams(9))
	if err := iterative.CheckProblem(pr); err != nil {
		t.Fatal(err)
	}
}

func TestSolvesManufactured(t *testing.T) {
	p := DefaultParams(31)
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if r := pr.ResidualNorm(res.State); r > 1e-10 {
		t.Fatalf("nonlinear residual %g", r)
	}
	h := 1 / float64(p.N+1)
	worst := 0.0
	for j := 0; j < p.N; j++ {
		x := float64(j+1) * h
		worst = math.Max(worst, math.Abs(res.State[j][0]-Exact(x)))
	}
	// second-order discretization of a smooth problem
	if worst > 5*h*h {
		t.Fatalf("error %g exceeds O(h²) bound %g", worst, 5*h*h)
	}
}

func TestSecondOrderConvergence(t *testing.T) {
	errAt := func(n int) float64 {
		p := DefaultParams(n)
		pr := New(p)
		res, err := iterative.SolveSequential(pr, 1e-13, 500000)
		if err != nil {
			t.Fatal(err)
		}
		h := 1 / float64(n+1)
		worst := 0.0
		for j := 0; j < n; j++ {
			worst = math.Max(worst, math.Abs(res.State[j][0]-Exact(float64(j+1)*h)))
		}
		return worst
	}
	e1 := errAt(15)
	e2 := errAt(31)
	ratio := e1 / e2
	// halving h should shrink the error ~4x
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("h-refinement error ratio %g, want ~4", ratio)
	}
}

func TestZeroForcing(t *testing.T) {
	pr := New(Params{N: 8, F: func(int) float64 { return 0 }, NewtonTol: 1e-12, MaxNewton: 40})
	res, err := iterative.SolveSequential(pr, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.State {
		if math.Abs(res.State[j][0]) > 1e-12 {
			t.Fatal("zero forcing must give the zero solution")
		}
	}
}

func TestWorkIsAdaptive(t *testing.T) {
	pr := New(DefaultParams(15))
	res, err := iterative.SolveSequential(pr, 1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// one more sweep from the fixed point must cost ~1 Newton iteration
	// per point
	get := func(i int) []float64 { return res.State[i] }
	out := []float64{0}
	work := 0.0
	for j := 0; j < pr.Components(); j++ {
		work += pr.Update(j, res.State[j], get, out)
	}
	// the floor is 1 Newton iteration per point; warm starts within the
	// sweep tolerance may need one more to pass the (tighter) Newton
	// tolerance, so allow up to 2 per point
	if work > 2*float64(pr.Components()) {
		t.Fatalf("converged sweep cost %g, want <= %d", work, 2*pr.Components())
	}
}
