// Package nldiffusion implements a nonlinear stationary problem — the 1-D
// quasi-linear diffusion equation −d/dx(k(u)·du/dx) = f with
// solution-dependent conductivity k(u) = 1 + u² — solved by asynchronous
// nonlinear Jacobi relaxation: each point update is a scalar Newton solve
// of its own discrete equation with the neighbors frozen.
//
// This is the fourth problem family of the repository (after the nonlinear
// evolution Brusselator, the linear evolution heat equation and the linear
// stationary Poisson problems), in the spirit of the asynchronous nonlinear
// network-flow relaxations the paper cites ([4], El Baz et al.): nonlinear,
// stationary, contraction-based, and therefore convergent under total
// asynchronism.
package nldiffusion

import (
	"fmt"
	"math"

	"aiac/internal/iterative"
	"aiac/internal/solver"
)

// Params defines an instance on N interior points of (0, 1) with zero
// Dirichlet boundaries.
type Params struct {
	N int
	// F is the forcing at interior point i (1-based); nil means the
	// manufactured forcing for which u(x) = x(1−x) is close to the
	// discrete solution (second-order accurate).
	F func(i int) float64
	// NewtonTol and MaxNewton control the per-point scalar Newton solves.
	NewtonTol float64
	MaxNewton int
}

// DefaultParams returns a standard configuration with the manufactured
// forcing.
func DefaultParams(n int) Params {
	return Params{N: n, NewtonTol: 1e-12, MaxNewton: 40}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("nldiffusion: N = %d, need >= 1", p.N)
	case p.NewtonTol <= 0:
		return fmt.Errorf("nldiffusion: NewtonTol = %g, need > 0", p.NewtonTol)
	case p.MaxNewton < 1:
		return fmt.Errorf("nldiffusion: MaxNewton = %d, need >= 1", p.MaxNewton)
	}
	return nil
}

// k is the conductivity.
func k(u float64) float64 { return 1 + u*u }

// dk is dk/du.
func dk(u float64) float64 { return 2 * u }

// Exact is the manufactured solution used by the default forcing.
func Exact(x float64) float64 { return x * (1 - x) }

// manufacturedF returns −d/dx(k(u)u′) for u = x(1−x):
// u′ = 1−2x, u″ = −2, so f = −(k(u)·u″ + k′(u)·u′²) = 2k(u) − 2u·u′².
func manufacturedF(x float64) float64 {
	u := Exact(x)
	up := 1 - 2*x
	return 2*k(u) - dk(u)*up*up
}

// Problem is the asynchronous nonlinear Jacobi view.
type Problem struct {
	p   Params
	rhs []float64 // h²·f per interior point
	h   float64
}

// New builds the problem, panicking on invalid parameters.
func New(p Params) *Problem {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	h := 1 / float64(p.N+1)
	f := p.F
	if f == nil {
		f = func(i int) float64 { return manufacturedF(float64(i) * h) }
	}
	rhs := make([]float64, p.N)
	for i := range rhs {
		rhs[i] = h * h * f(i+1)
	}
	return &Problem{p: p, rhs: rhs, h: h}
}

// Params returns the problem parameters.
func (pr *Problem) Params() Params { return pr.p }

// Components implements iterative.Problem.
func (pr *Problem) Components() int { return pr.p.N }

// TrajLen implements iterative.Problem: stationary.
func (pr *Problem) TrajLen() int { return 1 }

// Halo implements iterative.Problem.
func (pr *Problem) Halo() int { return 1 }

// Init implements iterative.Problem.
func (pr *Problem) Init(j int) []float64 { return []float64{0} }

// residualAt evaluates the discrete equation at point j for value u with
// neighbors l, r, using the standard conservative flux discretization with
// midpoint conductivities:
//
//	F(u) = k((u+l)/2)(u−l) + k((u+r)/2)(u−r) − h²f_j
func residualAt(rhs, u, l, r float64) (f, df float64) {
	kl := k((u + l) / 2)
	kr := k((u + r) / 2)
	f = kl*(u-l) + kr*(u-r) - rhs
	df = kl + kr + dk((u+l)/2)*(u-l)/2 + dk((u+r)/2)*(u-r)/2
	return f, df
}

// Update implements iterative.Problem: one nonlinear Jacobi relaxation of
// point j (scalar Newton on its own equation with neighbors frozen).
func (pr *Problem) Update(j int, old []float64, get func(i int) []float64, out []float64) float64 {
	l, r := 0.0, 0.0
	if j > 0 {
		l = get(j - 1)[0]
	}
	if j < pr.p.N-1 {
		r = get(j + 1)[0]
	}
	rhs := pr.rhs[j]
	g := func(u float64) (float64, float64) { return residualAt(rhs, u, l, r) }
	x, iters, err := solver.NewtonScalar(g, old[0], pr.p.NewtonTol, pr.p.MaxNewton)
	if err != nil {
		// fall back to a bisection-safe start; the residual is monotone
		// increasing in u for this k, so 0 is a safe restart
		x, iters, err = solver.NewtonScalar(g, 0, pr.p.NewtonTol, pr.p.MaxNewton)
		if err != nil {
			panic(fmt.Sprintf("nldiffusion: Newton failed at point %d: %v", j, err))
		}
	}
	out[0] = x
	return float64(iters)
}

// ResidualNorm returns the max-norm of the discrete nonlinear residual of a
// candidate solution.
func (pr *Problem) ResidualNorm(state [][]float64) float64 {
	worst := 0.0
	for j := 0; j < pr.p.N; j++ {
		l, r := 0.0, 0.0
		if j > 0 {
			l = state[j-1][0]
		}
		if j < pr.p.N-1 {
			r = state[j+1][0]
		}
		f, _ := residualAt(pr.rhs[j], state[j][0], l, r)
		if d := math.Abs(f); d > worst {
			worst = d
		}
	}
	return worst
}

var _ iterative.Problem = (*Problem)(nil)
