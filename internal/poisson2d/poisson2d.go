// Package poisson2d solves the 2-D Poisson equation −Δu = f on the unit
// square by (asynchronous) Jacobi iteration with a row-block decomposition:
// each component is one grid row, so component "trajectories" are rows of
// width W and the halo is one row on each side. It demonstrates that the
// engines' component abstraction covers multi-dimensional domains — the
// logical linear organization of the paper maps to the rows.
package poisson2d

import (
	"fmt"
	"math"

	"aiac/internal/iterative"
)

// Params defines a 2-D Poisson instance on an N×N interior grid with zero
// Dirichlet boundaries.
type Params struct {
	N int // interior rows and columns
	// F is the forcing at interior point (i, j), 1-based; nil means the
	// manufactured forcing 2π²·sin(πx)sin(πy), whose exact solution is
	// sin(πx)sin(πy).
	F func(i, j int) float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("poisson2d: N = %d, need >= 1", p.N)
	}
	return nil
}

// Problem is the row-block Jacobi view.
type Problem struct {
	p    Params
	rhs  [][]float64 // h²·f per interior point, row-major
	zero []float64   // boundary row
}

// New builds the problem, panicking on invalid parameters.
func New(p Params) *Problem {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	h := 1 / float64(p.N+1)
	f := p.F
	if f == nil {
		f = func(i, j int) float64 {
			x := float64(j) * h
			y := float64(i) * h
			return 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	rhs := make([][]float64, p.N)
	for i := range rhs {
		rhs[i] = make([]float64, p.N)
		for j := range rhs[i] {
			rhs[i][j] = h * h * f(i+1, j+1)
		}
	}
	return &Problem{p: p, rhs: rhs, zero: make([]float64, p.N)}
}

// Params returns the problem parameters.
func (pr *Problem) Params() Params { return pr.p }

// Components implements iterative.Problem: one component per grid row.
func (pr *Problem) Components() int { return pr.p.N }

// TrajLen implements iterative.Problem: each row holds N values.
func (pr *Problem) TrajLen() int { return pr.p.N }

// Halo implements iterative.Problem: a row depends on the rows above and
// below.
func (pr *Problem) Halo() int { return 1 }

// Init implements iterative.Problem.
func (pr *Problem) Init(i int) []float64 { return make([]float64, pr.p.N) }

// Update implements iterative.Problem: one Jacobi relaxation of row i using
// the previous iterate for in-row neighbors and the neighbor rows.
func (pr *Problem) Update(i int, old []float64, get func(k int) []float64, out []float64) float64 {
	up := pr.zero
	if i > 0 {
		up = get(i - 1)
	}
	down := pr.zero
	if i < pr.p.N-1 {
		down = get(i + 1)
	}
	n := pr.p.N
	for j := 0; j < n; j++ {
		s := pr.rhs[i][j] + up[j] + down[j]
		if j > 0 {
			s += old[j-1]
		}
		if j < n-1 {
			s += old[j+1]
		}
		out[j] = s / 4
	}
	return float64(n)
}

// Exact returns the manufactured exact solution sin(πx)sin(πy) at interior
// point (i, j), 1-based (valid for the default forcing).
func (p Params) Exact(i, j int) float64 {
	h := 1 / float64(p.N+1)
	return math.Sin(math.Pi*float64(j)*h) * math.Sin(math.Pi*float64(i)*h)
}

// ResidualNorm returns the max-norm algebraic residual ‖h²f − A·u‖∞ of a
// candidate solution (component-major rows).
func (pr *Problem) ResidualNorm(state [][]float64) float64 {
	n := pr.p.N
	worst := 0.0
	at := func(i, j int) float64 {
		if i < 0 || i >= n || j < 0 || j >= n {
			return 0
		}
		return state[i][j]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := 4*at(i, j) - at(i-1, j) - at(i+1, j) - at(i, j-1) - at(i, j+1)
			if d := math.Abs(r - pr.rhs[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

var _ iterative.Problem = (*Problem)(nil)
