package poisson2d

import (
	"math"
	"testing"

	"aiac/internal/iterative"
)

func TestValidate(t *testing.T) {
	if (Params{N: 1}).Validate() != nil {
		t.Fatal("N=1 should be valid")
	}
	if (Params{}).Validate() == nil {
		t.Fatal("N=0 should fail")
	}
}

func TestProblemInvariants(t *testing.T) {
	pr := New(Params{N: 8})
	if err := iterative.CheckProblem(pr); err != nil {
		t.Fatal(err)
	}
	if pr.Components() != 8 || pr.TrajLen() != 8 || pr.Halo() != 1 {
		t.Fatalf("shape: %d/%d/%d", pr.Components(), pr.TrajLen(), pr.Halo())
	}
}

func TestJacobiSolvesManufactured(t *testing.T) {
	p := Params{N: 15}
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-11, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if r := pr.ResidualNorm(res.State); r > 1e-9 {
		t.Fatalf("algebraic residual %g", r)
	}
	// second-order FD: error ~ h² ≈ 0.004 for N=15
	h := 1 / float64(p.N+1)
	worst := 0.0
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			worst = math.Max(worst, math.Abs(res.State[i][j]-p.Exact(i+1, j+1)))
		}
	}
	if worst > 2*h*h*math.Pi*math.Pi {
		t.Fatalf("discretization error %g exceeds O(h²) bound", worst)
	}
}

func TestSymmetry(t *testing.T) {
	p := Params{N: 9}
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-12, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// sin(πx)sin(πy) is symmetric under (i,j) -> (j,i) and reflections
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			a := res.State[i][j]
			b := res.State[j][i]
			if math.Abs(a-b) > 1e-10 {
				t.Fatalf("transpose symmetry broken at (%d,%d): %g vs %g", i, j, a, b)
			}
			c := res.State[p.N-1-i][j]
			if math.Abs(a-c) > 1e-10 {
				t.Fatalf("reflection symmetry broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestCustomForcing(t *testing.T) {
	pr := New(Params{N: 6, F: func(i, j int) float64 { return 0 }})
	res, err := iterative.SolveSequential(pr, 1e-13, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.State {
		for j := range res.State[i] {
			if math.Abs(res.State[i][j]) > 1e-12 {
				t.Fatal("zero forcing must give zero solution")
			}
		}
	}
}
