// Package asciiplot renders simple terminal line/scatter plots, including
// the log-log axes needed to reproduce the paper's Figure 5 (execution time
// versus number of processors for the balanced and non-balanced solvers).
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a plot.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte // defaults to '*', 'o', '+', 'x' in order
}

// Config controls rendering.
type Config struct {
	Width, Height int  // plot area in characters (default 60x20)
	LogX, LogY    bool // logarithmic axes
	Title         string
	XLabel        string
	YLabel        string
}

var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Plot renders the series into a text block.
func Plot(cfg Config, series ...Series) string {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 20
	}
	// collect ranges
	var xs, ys []float64
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			panic("asciiplot: series X/Y length mismatch")
		}
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return "(no data)\n"
	}
	tx := transform(cfg.LogX)
	ty := transform(cfg.LogY)
	xmin, xmax := bounds(xs, tx)
	ymin, ymax := bounds(ys, ty)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	cells := make([][]byte, cfg.Height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			cx := int(math.Round(float64(cfg.Width-1) * (tx(s.X[i]) - xmin) / (xmax - xmin)))
			cy := int(math.Round(float64(cfg.Height-1) * (ty(s.Y[i]) - ymin) / (ymax - ymin)))
			row := cfg.Height - 1 - cy
			if row >= 0 && row < cfg.Height && cx >= 0 && cx < cfg.Width {
				cells[row][cx] = marker
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yl, yh := inv(cfg.LogY, ymin), inv(cfg.LogY, ymax)
	fmt.Fprintf(&b, "%10.4g ┤%s\n", yh, string(cells[0]))
	for i := 1; i < cfg.Height-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(cells[i]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", yl, string(cells[cfg.Height-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", cfg.Width))
	xl, xh := inv(cfg.LogX, xmin), inv(cfg.LogX, xmax)
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", cfg.Width/2, xl, cfg.Width-cfg.Width/2, xh)
	axes := ""
	if cfg.LogX {
		axes += " [log x]"
	}
	if cfg.LogY {
		axes += " [log y]"
	}
	if cfg.XLabel != "" || cfg.YLabel != "" || axes != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s%s\n", "", cfg.XLabel, cfg.YLabel, axes)
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%10s  %c %s\n", "", marker, s.Name)
	}
	return b.String()
}

func transform(log bool) func(float64) float64 {
	if log {
		return func(v float64) float64 {
			if v <= 0 {
				panic("asciiplot: log axis requires positive values")
			}
			return math.Log10(v)
		}
	}
	return func(v float64) float64 { return v }
}

func inv(log bool, v float64) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func bounds(vs []float64, t func(float64) float64) (lo, hi float64) {
	lo, hi = t(vs[0]), t(vs[0])
	for _, v := range vs[1:] {
		tv := t(v)
		lo = math.Min(lo, tv)
		hi = math.Max(hi, tv)
	}
	return lo, hi
}
