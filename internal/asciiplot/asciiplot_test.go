package asciiplot

import (
	"strings"
	"testing"
)

func TestLinearPlot(t *testing.T) {
	out := Plot(Config{Width: 40, Height: 10, Title: "test"},
		Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
	)
	if !strings.Contains(out, "test") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("missing markers:\n%s", out)
	}
	if !strings.Contains(out, "up") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestLogLogPlot(t *testing.T) {
	// a power law must render as markers spanning the full plot in log-log
	xs := []float64{1, 10, 100}
	ys := []float64{1000, 100, 10}
	out := Plot(Config{Width: 30, Height: 8, LogX: true, LogY: true, XLabel: "procs", YLabel: "time"},
		Series{Name: "t", X: xs, Y: ys},
	)
	if !strings.Contains(out, "[log x]") || !strings.Contains(out, "[log y]") {
		t.Fatalf("missing log annotations:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// first data row (top) should contain the marker near the left and
	// the bottom data row near the right
	var top, bottom string
	for _, l := range lines {
		if strings.Contains(l, "└") {
			break // past the plot area; ignore the legend's markers
		}
		if strings.Contains(l, "*") {
			if top == "" {
				top = l
			}
			bottom = l
		}
	}
	if top == "" {
		t.Fatalf("no markers:\n%s", out)
	}
	if strings.Index(top, "*") > strings.Index(bottom, "*") {
		t.Fatalf("downward power law should go top-left to bottom-right:\n%s", out)
	}
}

func TestMultipleSeriesMarkers(t *testing.T) {
	out := Plot(Config{Width: 20, Height: 6},
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers expected:\n%s", out)
	}
}

func TestEmptyPlot(t *testing.T) {
	if out := Plot(Config{}); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
}

func TestLogAxisRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Plot(Config{LogY: true}, Series{Name: "bad", X: []float64{1}, Y: []float64{0}})
}

func TestMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Plot(Config{}, Series{Name: "bad", X: []float64{1, 2}, Y: []float64{1}})
}

func TestConstantSeries(t *testing.T) {
	out := Plot(Config{Width: 10, Height: 4},
		Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series should still render:\n%s", out)
	}
}
