package brusselator

import (
	"math/rand"
	"testing"

	"aiac/internal/solver"
)

// TestNewton2BrussMatchesGeneric pins the bit-identity contract documented
// on solver.Newton2Bruss: the hand-inlined kernel and the generic
// Newton2Sys over cellSys must walk exactly the same iterates.
func TestNewton2BrussMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	p := DefaultParams(32, 0.02)
	c := p.C()
	for trial := 0; trial < 500; trial++ {
		sys := cellSys{
			dt: p.Dt, c: c,
			uPrev: 0.5 + rng.Float64()*2, vPrev: 2 + rng.Float64()*2,
			uL: 0.5 + rng.Float64()*2, vL: 2 + rng.Float64()*2,
			uR: 0.5 + rng.Float64()*2, vR: 2 + rng.Float64()*2,
		}
		u0 := sys.uPrev + (rng.Float64()-0.5)*0.2
		v0 := sys.vPrev + (rng.Float64()-0.5)*0.2
		ug, vg, ig, errg := solver.Newton2Sys(sys, u0, v0, p.NewtonTol, p.MaxNewton)
		us, vs, is, ok := solver.Newton2Bruss(sys.dt, sys.c, sys.uPrev, sys.vPrev,
			sys.uL, sys.vL, sys.uR, sys.vR, u0, v0, p.NewtonTol, p.MaxNewton)
		if (errg == nil) != ok {
			t.Fatalf("trial %d: generic err=%v, specialized ok=%v", trial, errg, ok)
		}
		if ug != us || vg != vs || ig != is {
			t.Fatalf("trial %d: generic (%.17g, %.17g, %d) != specialized (%.17g, %.17g, %d)",
				trial, ug, vg, ig, us, vs, is)
		}
	}
}
