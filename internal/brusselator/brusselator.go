// Package brusselator implements the paper's test problem (§4): the 1-D
// reaction-diffusion Brusselator, a large stiff ODE system from Hairer &
// Wanner modeling an oscillating chemical reaction.
//
// With N interior grid points and c = α(N+1)², the semi-discretized system
// for the concentrations u_i, v_i is
//
//	u'_i = 1 + u_i²v_i − 4u_i + c(u_{i−1} − 2u_i + u_{i+1})
//	v'_i = 3u_i − u_i²v_i + c(v_{i−1} − 2v_i + v_{i+1})
//
// with Dirichlet boundaries u_0 = u_{N+1} = 1, v_0 = v_{N+1} = 3 (the
// original Hairer–Wanner values; the paper's "α(N+1)²" boundary line is an
// OCR artifact, see DESIGN.md) and initial data u_i(0) = 1 + sin(2πx_i),
// v_i(0) = 3, x_i = i/(N+1), on the time window [0, T], T = 10, α = 1/50.
//
// The unit of distribution is the grid cell: cell i carries the pair
// (u_i, v_i), i.e. the two consecutive entries y_{2i-1}, y_{2i} of the
// paper's interleaved state vector y = (u_1, v_1, ..., u_N, v_N). A cell
// update depends on the neighboring cell on each side — exactly the paper's
// "two spatial components before y_p and two after y_q" — so the halo is
// one cell. The pair must be advanced jointly (a 2×2 Newton per implicit
// Euler step): freezing v over the whole window while sweeping u would make
// the autocatalytic term u²v blow up in finite time.
//
// The package exposes the problem twice:
//   - as an iterative.Problem (cell-wise implicit-Euler waveform
//     relaxation, the paper's two-stage "Euler outside, Newton inside"
//     scheme of §5.1), solved by the parallel engines; and
//   - as an ode.System for a full-system sequential reference integration
//     that the parallel solutions are validated against.
package brusselator

import (
	"fmt"
	"math"

	"aiac/internal/iterative"
	"aiac/internal/solver"
)

// Params defines a Brusselator instance and its discretization. The zero
// value is not usable; call Validate or use New.
type Params struct {
	N     int     // interior grid points (cells); the state has 2N scalars
	Alpha float64 // diffusion coefficient; the paper fixes 1/50
	T     float64 // time horizon; the paper fixes 10
	Dt    float64 // implicit Euler step
	// NewtonTol and MaxNewton control the inner per-step Newton solves.
	NewtonTol float64
	MaxNewton int
	// Init0, when non-nil, overrides the paper's initial condition with
	// per-cell (u, v) pairs — used by the windowing driver to chain time
	// windows. Length must be N.
	Init0 [][2]float64
}

// DefaultParams returns the paper's configuration for a given grid size and
// time step.
func DefaultParams(n int, dt float64) Params {
	return Params{N: n, Alpha: 1.0 / 50.0, T: 10, Dt: dt, NewtonTol: 1e-10, MaxNewton: 25}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("brusselator: N = %d, need >= 1", p.N)
	case p.Alpha <= 0:
		return fmt.Errorf("brusselator: Alpha = %g, need > 0", p.Alpha)
	case p.T <= 0:
		return fmt.Errorf("brusselator: T = %g, need > 0", p.T)
	case p.Dt <= 0 || p.Dt > p.T:
		return fmt.Errorf("brusselator: Dt = %g, need in (0, T]", p.Dt)
	case p.NewtonTol <= 0:
		return fmt.Errorf("brusselator: NewtonTol = %g, need > 0", p.NewtonTol)
	case p.MaxNewton < 1:
		return fmt.Errorf("brusselator: MaxNewton = %d, need >= 1", p.MaxNewton)
	case p.Init0 != nil && len(p.Init0) != p.N:
		return fmt.Errorf("brusselator: Init0 has %d cells, need %d", len(p.Init0), p.N)
	}
	return nil
}

// Steps returns the number of implicit Euler steps in [0, T].
func (p Params) Steps() int { return int(math.Round(p.T / p.Dt)) }

// C returns the discrete diffusion coefficient α(N+1)².
func (p Params) C() float64 { return p.Alpha * float64(p.N+1) * float64(p.N+1) }

const (
	boundaryU = 1.0
	boundaryV = 3.0
)

// InitU returns the initial concentration u_i(0) at interior cell i (1-based).
func (p Params) InitU(i int) float64 {
	x := float64(i) / float64(p.N+1)
	return 1 + math.Sin(2*math.Pi*x)
}

// Problem is the waveform-relaxation view of the Brusselator. Component k
// (0-based) is grid cell k+1; its trajectory interleaves the pair over
// time: traj[2t] = u(t_t), traj[2t+1] = v(t_t).
type Problem struct {
	p     Params
	steps int
	c     float64
	bound []float64 // constant boundary trajectory (u=1, v=3 interleaved)
}

// New builds the waveform problem, panicking on invalid parameters (use
// Params.Validate for graceful checking).
func New(p Params) *Problem {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	steps := p.Steps()
	pr := &Problem{
		p:     p,
		steps: steps,
		c:     p.C(),
		bound: make([]float64, 2*(steps+1)),
	}
	for t := 0; t <= steps; t++ {
		pr.bound[2*t] = boundaryU
		pr.bound[2*t+1] = boundaryV
	}
	return pr
}

// Params returns the problem parameters.
func (pr *Problem) Params() Params { return pr.p }

// Components implements iterative.Problem: one component per grid cell.
func (pr *Problem) Components() int { return pr.p.N }

// TrajLen implements iterative.Problem: (u, v) interleaved over steps+1
// time points.
func (pr *Problem) TrajLen() int { return 2 * (pr.steps + 1) }

// Halo implements iterative.Problem: a cell depends on one cell on each
// side, which is the paper's "two spatial components before y_p and two
// after y_q" in y-vector units.
func (pr *Problem) Halo() int { return 1 }

// Init implements iterative.Problem: the waveform initial guess is the
// initial condition held constant over the window.
func (pr *Problem) Init(k int) []float64 {
	out := make([]float64, pr.TrajLen())
	u0, v0 := pr.p.InitU(k+1), boundaryV
	if pr.p.Init0 != nil {
		u0, v0 = pr.p.Init0[k][0], pr.p.Init0[k][1]
	}
	for t := 0; t <= pr.steps; t++ {
		out[2*t] = u0
		out[2*t+1] = v0
	}
	return out
}

// FinalState extracts the per-cell (u, v) values at the window's final time
// from a solved state (component-major interleaved trajectories), in the
// form Params.Init0 accepts — this is how successive time windows chain.
func FinalState(state [][]float64) [][2]float64 {
	out := make([][2]float64, len(state))
	for k, tr := range state {
		out[k] = [2]float64{tr[len(tr)-2], tr[len(tr)-1]}
	}
	return out
}

// cellSys is the 2×2 implicit-Euler system of one Brusselator cell at one
// time step:
//
//	f1 = u − uPrev − dt·(1 + u²v − 4u + c·(uL − 2u + uR))
//	f2 = v − vPrev − dt·(3u − u²v + c·(vL − 2v + vR))
//
// Update itself runs solver.Newton2Bruss, the hand-inlined version of this
// system; cellSys is kept as the readable reference the tests check the
// specialized kernel against, iterate for iterate. Eval therefore evaluates
// the same reassociated expressions as Newton2Bruss — operation for
// operation, so the iterates agree bitwise, not just to rounding.
type cellSys struct {
	dt, c          float64
	uPrev, vPrev   float64
	uL, vL, uR, vR float64
}

// Eval implements solver.Sys2.
func (s cellSys) Eval(u, v float64) (f1, f2, j11, j12, j21, j22 float64) {
	dtc := s.dt * s.c
	a1 := 1 + 4*s.dt + 2*dtc
	b1 := 1 + 2*dtc
	ndt3 := -(3 * s.dt)
	uu := u * u
	dtuuv := s.dt * uu * v
	f1 = math.FMA(a1, u, -s.dt-dtc*(s.uL+s.uR)-s.uPrev) - dtuuv
	f2 = math.FMA(ndt3, u, math.FMA(b1, v, -dtc*(s.vL+s.vR)-s.vPrev)) + dtuuv
	dt2u := 2 * s.dt * u
	j11 = math.FMA(dt2u, -v, a1)
	j12 = -s.dt * uu
	j21 = math.FMA(dt2u, v, ndt3)
	j22 = math.FMA(s.dt, uu, b1)
	return
}

// Update implements iterative.Problem: one implicit-Euler sweep of cell k
// over the whole window. Each time step solves the 2×2 nonlinear system for
// (u, v) jointly by Newton, warm-started from the previous iterate (§5.1's
// Solve); neighbor-cell trajectories come from the previous outer iteration.
// The returned work is the total Newton iteration count, which is what makes
// the cost adaptive: converged cells cost one iteration per step, active
// cells several. The sweep performs no heap allocation.
func (pr *Problem) Update(k int, old []float64, get func(i int) []float64, out []float64) float64 {
	left, right := pr.neighbors(k, get)
	out[0], out[1] = old[0], old[1] // the initial condition never changes
	work, failStep := solver.BrussWindow(pr.p.Dt, pr.c, pr.p.NewtonTol, pr.p.MaxNewton,
		pr.steps, left, right, old, out)
	if failStep != 0 {
		panic(newtonFailure(k, failStep, pr.p.MaxNewton))
	}
	return work
}

// UpdatePair implements iterative.PairUpdater: two cells advanced by one
// fused window solve with their Newton chains interleaved. Bit-identical
// to Update(j1) followed by Update(j2) — the caller must guarantee Jacobi
// reads (both cells see previous-iteration neighbor trajectories).
func (pr *Problem) UpdatePair(j1, j2 int, old1, old2 []float64, get func(i int) []float64, out1, out2 []float64) (w1, w2 float64) {
	left1, right1 := pr.neighbors(j1, get)
	left2, right2 := pr.neighbors(j2, get)
	out1[0], out1[1] = old1[0], old1[1]
	out2[0], out2[1] = old2[0], old2[1]
	w1, w2, fail1, fail2 := solver.BrussWindowPair(pr.p.Dt, pr.c, pr.p.NewtonTol, pr.p.MaxNewton,
		pr.steps, left1, right1, old1, out1, left2, right2, old2, out2)
	if fail1 != 0 {
		panic(newtonFailure(j1, fail1, pr.p.MaxNewton))
	}
	if fail2 != 0 {
		panic(newtonFailure(j2, fail2, pr.p.MaxNewton))
	}
	return w1, w2
}

// neighbors resolves a cell's halo trajectories, substituting the constant
// boundary trajectory at the domain edges.
func (pr *Problem) neighbors(k int, get func(i int) []float64) (left, right []float64) {
	if k < 0 || k >= pr.p.N {
		panic(fmt.Sprintf("brusselator: cell %d out of range", k))
	}
	left = pr.bound
	if k > 0 {
		left = get(k - 1)
	}
	right = pr.bound
	if k < pr.p.N-1 {
		right = get(k + 1)
	}
	return left, right
}

func newtonFailure(k, step, maxNewton int) string {
	return fmt.Sprintf("brusselator: Newton failed at cell %d step %d (singular Jacobian or no convergence in %d iterations)", k, step, maxNewton)
}

// U extracts the u trajectory of a cell from its interleaved trajectory.
func U(traj []float64) []float64 {
	out := make([]float64, len(traj)/2)
	for t := range out {
		out[t] = traj[2*t]
	}
	return out
}

// V extracts the v trajectory of a cell from its interleaved trajectory.
func V(traj []float64) []float64 {
	out := make([]float64, len(traj)/2)
	for t := range out {
		out[t] = traj[2*t+1]
	}
	return out
}

var (
	_ iterative.Problem     = (*Problem)(nil)
	_ iterative.PairUpdater = (*Problem)(nil)
)
