package brusselator

import (
	"aiac/internal/linalg"
	"aiac/internal/ode"
)

// System is the full-system ODE view of the same Brusselator instance,
// used for the sequential reference integration: all 2N equations are
// advanced together by implicit Euler with a banded (kl = ku = 2) Newton
// solve per step. Its solution is the fixed point the waveform relaxation
// must converge to.
type System struct {
	p Params
	c float64
}

// NewSystem builds the full-system view.
func NewSystem(p Params) *System {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &System{p: p, c: p.C()}
}

// Dim implements ode.System.
func (s *System) Dim() int { return 2 * s.p.N }

// Bandwidth implements ode.System.
func (s *System) Bandwidth() (int, int) { return 2, 2 }

// Y0 returns the initial state in the interleaved (u_1, v_1, ...) layout,
// honoring a Params.Init0 override.
func (s *System) Y0() []float64 {
	y := make([]float64, 2*s.p.N)
	for k := 0; k < s.p.N; k++ {
		if s.p.Init0 != nil {
			y[2*k], y[2*k+1] = s.p.Init0[k][0], s.p.Init0[k][1]
		} else {
			y[2*k] = s.p.InitU(k + 1)
			y[2*k+1] = boundaryV
		}
	}
	return y
}

// F implements ode.System.
func (s *System) F(t float64, y, dydt []float64) {
	n, c := s.p.N, s.c
	for k := 0; k < n; k++ {
		u, v := y[2*k], y[2*k+1]
		uL, vL := boundaryU, boundaryV
		if k > 0 {
			uL, vL = y[2*k-2], y[2*k-1]
		}
		uR, vR := boundaryU, boundaryV
		if k < n-1 {
			uR, vR = y[2*k+2], y[2*k+3]
		}
		dydt[2*k] = 1 + u*u*v - 4*u + c*(uL-2*u+uR)
		dydt[2*k+1] = 3*u - u*u*v + c*(vL-2*v+vR)
	}
}

// Jac implements ode.System.
func (s *System) Jac(t float64, y []float64, jac *linalg.Banded) {
	n, c := s.p.N, s.c
	for k := 0; k < n; k++ {
		u, v := y[2*k], y[2*k+1]
		iu, iv := 2*k, 2*k+1
		// u equation
		jac.Set(iu, iu, 2*u*v-4-2*c)
		jac.Set(iu, iv, u*u)
		if k > 0 {
			jac.Set(iu, iu-2, c)
		}
		if k < n-1 {
			jac.Set(iu, iu+2, c)
		}
		// v equation
		jac.Set(iv, iu, 3-2*u*v)
		jac.Set(iv, iv, -u*u-2*c)
		if k > 0 {
			jac.Set(iv, iv-2, c)
		}
		if k < n-1 {
			jac.Set(iv, iv+2, c)
		}
	}
}

var _ ode.System = (*System)(nil)

// Reference integrates the full system sequentially with implicit Euler and
// returns cell-major interleaved trajectories in the waveform solver's
// layout (traj[k][2t] = u_{k+1}(t_t), traj[k][2t+1] = v_{k+1}(t_t)) along
// with the total Newton iteration count.
func Reference(p Params) (traj [][]float64, newtonIters int, err error) {
	sys := NewSystem(p)
	res, err := ode.Integrate(sys, sys.Y0(), 0, p.Dt, p.Steps(), ode.Options{
		NewtonTol: p.NewtonTol,
		MaxNewton: p.MaxNewton * 4, // the full coupled solve may need more
	})
	if err != nil {
		return nil, 0, err
	}
	traj = make([][]float64, p.N)
	for k := 0; k < p.N; k++ {
		traj[k] = make([]float64, 2*len(res.Y))
		for t := range res.Y {
			traj[k][2*t] = res.Y[t][2*k]
			traj[k][2*t+1] = res.Y[t][2*k+1]
		}
	}
	return traj, res.NewtonIters, nil
}

// MaxTrajDiff returns the largest pointwise difference between two
// component-major trajectory sets of identical shape.
func MaxTrajDiff(a, b [][]float64) float64 {
	if len(a) != len(b) {
		panic("brusselator: trajectory sets differ in component count")
	}
	m := 0.0
	for j := range a {
		if d := linalg.MaxAbsDiff(a[j], b[j]); d > m {
			m = d
		}
	}
	return m
}
