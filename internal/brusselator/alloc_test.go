package brusselator

import "testing"

// TestUpdateAllocFree pins the hot-path property the engine relies on: one
// waveform sweep of a cell performs zero heap allocations (the Newton system
// is a stack value and all trajectory buffers are caller-owned).
func TestUpdateAllocFree(t *testing.T) {
	p := DefaultParams(8, 0.02)
	p.T = 1
	prob := New(p)
	m := prob.Components()
	old := make([][]float64, m)
	cur := make([][]float64, m)
	for j := 0; j < m; j++ {
		old[j] = prob.Init(j)
		cur[j] = make([]float64, prob.TrajLen())
	}
	get := func(i int) []float64 { return old[i] }
	k := m / 2
	allocs := testing.AllocsPerRun(200, func() {
		prob.Update(k, old[k], get, cur[k])
	})
	if allocs != 0 {
		t.Fatalf("brusselator.Update allocates %.1f objects per call, want 0", allocs)
	}
}
