package brusselator

import (
	"math"
	"testing"

	"aiac/internal/iterative"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(16, 0.05)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, Alpha: 0.02, T: 10, Dt: 0.1, NewtonTol: 1e-8, MaxNewton: 10},
		{N: 4, Alpha: 0, T: 10, Dt: 0.1, NewtonTol: 1e-8, MaxNewton: 10},
		{N: 4, Alpha: 0.02, T: 0, Dt: 0.1, NewtonTol: 1e-8, MaxNewton: 10},
		{N: 4, Alpha: 0.02, T: 10, Dt: 0, NewtonTol: 1e-8, MaxNewton: 10},
		{N: 4, Alpha: 0.02, T: 1, Dt: 2, NewtonTol: 1e-8, MaxNewton: 10},
		{N: 4, Alpha: 0.02, T: 10, Dt: 0.1, NewtonTol: 0, MaxNewton: 10},
		{N: 4, Alpha: 0.02, T: 10, Dt: 0.1, NewtonTol: 1e-8, MaxNewton: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestProblemShape(t *testing.T) {
	p := DefaultParams(8, 0.1)
	pr := New(p)
	if pr.Components() != 8 {
		t.Fatalf("Components = %d", pr.Components())
	}
	if pr.TrajLen() != 2*101 {
		t.Fatalf("TrajLen = %d", pr.TrajLen())
	}
	if pr.Halo() != 1 {
		t.Fatalf("Halo = %d", pr.Halo())
	}
	if err := iterative.CheckProblem(pr); err != nil {
		t.Fatal(err)
	}
}

func TestInitialConditions(t *testing.T) {
	p := DefaultParams(10, 0.1)
	pr := New(p)
	for k := 0; k < pr.Components(); k++ {
		init := pr.Init(k)
		want := 1 + math.Sin(2*math.Pi*float64(k+1)/11)
		if math.Abs(init[0]-want) > 1e-15 {
			t.Fatalf("u_%d init = %g, want %g", k+1, init[0], want)
		}
		if init[1] != 3 {
			t.Fatalf("v init = %g", init[1])
		}
		// constant over the window (waveform initial guess)
		for tt := 0; tt < len(init)/2; tt++ {
			if init[2*tt] != init[0] || init[2*tt+1] != init[1] {
				t.Fatal("Init must be constant in time")
			}
		}
	}
}

func TestSequentialWaveformConverges(t *testing.T) {
	p := DefaultParams(12, 0.05)
	p.T = 2 // short window keeps the test fast
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-8, 500)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("converged in %d sweeps, %.0f work units", res.Iterations, res.Work)
	if res.Iterations < 3 {
		t.Fatalf("suspiciously fast convergence: %d sweeps", res.Iterations)
	}
	// residual history must be (eventually) decreasing
	h := res.ResidualHistory
	if h[len(h)-1] >= h[0] {
		t.Fatalf("residuals did not decrease: first %g last %g", h[0], h[len(h)-1])
	}
}

func TestWaveformMatchesReference(t *testing.T) {
	p := DefaultParams(10, 0.05)
	p.T = 2
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxTrajDiff(res.State, ref); d > 1e-6 {
		t.Fatalf("waveform vs full-system reference differ by %g", d)
	}
}

func TestFullWindowMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full [0,10] window in -short mode")
	}
	// the paper's full time window [0, 10]
	p := DefaultParams(8, 0.05)
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-9, 5000)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxTrajDiff(res.State, ref); d > 1e-5 {
		t.Fatalf("waveform vs reference differ by %g on [0,10]", d)
	}
	t.Logf("full window: %d sweeps", res.Iterations)
}

func TestReferenceOscillates(t *testing.T) {
	// The Brusselator's hallmark is the oscillating reaction: over the
	// full window [0, 10] a mid-domain u component must move substantially.
	p := DefaultParams(12, 0.05)
	ref, _, err := Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	mid := U(ref[p.N/2])
	lo, hi := mid[0], mid[0]
	for _, v := range mid {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 0.5 {
		t.Fatalf("u range %g too small; dynamics look frozen", hi-lo)
	}
	// concentrations stay positive and bounded
	for j := range ref {
		for _, v := range ref[j] {
			if v < 0 || v > 10 || math.IsNaN(v) {
				t.Fatalf("cell %d out of physical range: %g", j, v)
			}
		}
	}
}

func TestWorkIsAdaptive(t *testing.T) {
	// Near the fixed point a sweep must be much cheaper than the first
	// sweeps: the converged Newton warm start costs 1 iteration per step.
	p := DefaultParams(8, 0.05)
	p.T = 1
	pr := New(p)
	res, err := iterative.SolveSequential(pr, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// One more sweep from the converged state:
	get := func(i int) []float64 { return res.State[i] }
	out := make([]float64, pr.TrajLen())
	convergedWork := 0.0
	for j := 0; j < pr.Components(); j++ {
		convergedWork += pr.Update(j, res.State[j], get, out)
	}
	// Minimum possible work = 1 per step per cell.
	minWork := float64(pr.Components() * pr.p.Steps())
	if convergedWork > 1.2*minWork {
		t.Fatalf("converged sweep cost %g, want near the floor %g", convergedWork, minWork)
	}
	avgWork := res.Work / float64(res.Iterations)
	if avgWork <= convergedWork*1.05 {
		t.Fatalf("average sweep (%g) should cost more than a converged sweep (%g)", avgWork, convergedWork)
	}
}

func TestUVExtractors(t *testing.T) {
	traj := []float64{1, 2, 3, 4, 5, 6}
	u, v := U(traj), V(traj)
	if len(u) != 3 || u[0] != 1 || u[1] != 3 || u[2] != 5 {
		t.Fatalf("U = %v", u)
	}
	if len(v) != 3 || v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Fatalf("V = %v", v)
	}
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	pr := New(DefaultParams(4, 0.1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	out := make([]float64, pr.TrajLen())
	pr.Update(99, pr.Init(0), func(i int) []float64 { return nil }, out)
}

func TestCAndSteps(t *testing.T) {
	p := DefaultParams(49, 0.1)
	if math.Abs(p.C()-50) > 1e-12 {
		t.Fatalf("C = %g, want 50", p.C())
	}
	if p.Steps() != 100 {
		t.Fatalf("Steps = %d", p.Steps())
	}
}
