package aiac_test

// Benchmarks regenerating every table and figure of the paper (at the
// experiments' Quick scale so `go test -bench=.` stays tractable), plus
// micro-benchmarks of the numerical and runtime kernels. Run
// `go run ./cmd/paperexp` for the full-scale reproductions recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"aiac"
	"aiac/internal/experiments"
	"aiac/internal/linalg"
	"aiac/internal/runenv"
	"aiac/internal/vtime"
)

func reportShape(b *testing.B, reports ...experiments.Report) {
	b.Helper()
	for _, r := range reports {
		if !r.Pass {
			b.Logf("shape divergence in %s: %s", r.ID, r.Measured)
		}
	}
}

// BenchmarkFig1to4FlowFigures regenerates the execution-flow diagrams of
// Figures 1-4 (SISC/SIAC/AIAC-general/AIAC-variant Gantt charts).
func BenchmarkFig1to4FlowFigures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.FlowFigures(experiments.Quick)...)
	}
}

// BenchmarkFig5Homogeneous regenerates Figure 5: execution time vs number
// of processors with and without load balancing on the homogeneous cluster.
func BenchmarkFig5Homogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.Fig5(experiments.Quick))
	}
}

// BenchmarkTable1Heterogeneous regenerates Table 1: balanced vs
// non-balanced AIAC on the 15-machine 3-site heterogeneous grid.
func BenchmarkTable1Heterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.Table1(experiments.Quick))
	}
}

// BenchmarkModeMatrix regenerates the §6 cross-context claims (X1).
func BenchmarkModeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.ModeMatrix(experiments.Quick))
	}
}

// benchSim runs fn b.N times with the across-run pool pinned to one engine
// execution and the virtual-time scheduler set to simWorkers threads, so the
// measurement isolates within-run parallelism (engine.Config.SimWorkers)
// from the experiment pool's across-run parallelism. Both knobs are restored
// afterwards.
func benchSim(b *testing.B, simWorkers int, fn func()) {
	b.Helper()
	prevPool := experiments.SetWorkers(1)
	prevSim := experiments.SetSimWorkers(simWorkers)
	b.Cleanup(func() {
		experiments.SetWorkers(prevPool)
		experiments.SetSimWorkers(prevSim)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
}

// simWorkerCounts is the -sim-workers sweep the parallel-scheduler benchmarks
// run: 1 is the sequential baseline (same code path as SimWorkers=0), the
// rest exercise the conservative-lookahead scheduler at increasing widths.
// Speedups require real cores; on a single-core host the >1 rows only show
// the scheduler's coordination overhead.
var simWorkerCounts = []int{1, 2, 4}

// BenchmarkTable1HeterogeneousSim is BenchmarkTable1Heterogeneous with the
// experiment pool pinned serial and the solve itself spread over
// -sim-workers virtual-time scheduler threads (bit-identical results at any
// width; see DESIGN.md "Event ordering").
func BenchmarkTable1HeterogeneousSim(b *testing.B) {
	for _, w := range simWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSim(b, w, func() {
				reportShape(b, experiments.Table1(experiments.Quick))
			})
		})
	}
}

// BenchmarkModeMatrixSim is BenchmarkModeMatrix under the same pinned-pool
// sim-workers sweep as BenchmarkTable1HeterogeneousSim.
func BenchmarkModeMatrixSim(b *testing.B) {
	for _, w := range simWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSim(b, w, func() {
				reportShape(b, experiments.ModeMatrix(experiments.Quick))
			})
		})
	}
}

// BenchmarkLBFrequency regenerates the balancing-frequency sweep (X2).
func BenchmarkLBFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.LBFrequency(experiments.Quick))
	}
}

// BenchmarkLBAccuracy regenerates the λ-vs-network sweep (X3).
func BenchmarkLBAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.LBAccuracy(experiments.Quick))
	}
}

// BenchmarkLBEstimator regenerates the load-estimator comparison (X4).
func BenchmarkLBEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.LBEstimator(experiments.Quick))
	}
}

// BenchmarkFamineGuard regenerates the ThresholdData ablation (X5).
func BenchmarkFamineGuard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.FamineGuard(experiments.Quick))
	}
}

// BenchmarkLBFamilies regenerates the §3 balancing-algorithm comparison (X6).
func BenchmarkLBFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.LBFamilies())
	}
}

// --- kernel micro-benchmarks -------------------------------------------

// BenchmarkBrusselatorSweep measures one waveform sweep of a 64-cell
// Brusselator (the inner loop every engine iteration runs): fused
// two-cell updates, exactly as the engines sweep Jacobi problems.
func BenchmarkBrusselatorSweep(b *testing.B) {
	params := aiac.BrusselatorParams(64, 0.02)
	params.T = 1
	prob := aiac.NewBrusselator(params)
	m := prob.Components()
	old := make([][]float64, m)
	cur := make([][]float64, m)
	for j := 0; j < m; j++ {
		old[j] = prob.Init(j)
		cur[j] = make([]float64, prob.TrajLen())
	}
	get := func(i int) []float64 { return old[i] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+1 < m; j += 2 {
			prob.UpdatePair(j, j+1, old[j], old[j+1], get, cur[j], cur[j+1])
		}
		if m%2 != 0 {
			prob.Update(m-1, old[m-1], get, cur[m-1])
		}
	}
}

// BenchmarkAIACSolve measures a complete load-balanced AIAC solve on the
// virtual-time runtime (4 nodes, 32 cells).
func BenchmarkAIACSolve(b *testing.B) {
	params := aiac.BrusselatorParams(32, 0.05)
	params.T = 1
	prob := aiac.NewBrusselator(params)
	for i := 0; i < b.N; i++ {
		res, err := aiac.Solve(aiac.Config{
			Mode: aiac.AIAC, P: 4, Problem: prob,
			Cluster: aiac.Homogeneous(4),
			Tol:     1e-7, MaxIter: 100000,
			LB: aiac.DefaultLBPolicy(), Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkAIACSolveMetrics is BenchmarkAIACSolve with the telemetry sink
// attached (every-iteration sampling): the price of full observability,
// compared against the zero-cost disabled path above.
func BenchmarkAIACSolveMetrics(b *testing.B) {
	params := aiac.BrusselatorParams(32, 0.05)
	params.T = 1
	prob := aiac.NewBrusselator(params)
	for i := 0; i < b.N; i++ {
		res, err := aiac.Solve(aiac.Config{
			Mode: aiac.AIAC, P: 4, Problem: prob,
			Cluster: aiac.Homogeneous(4),
			Tol:     1e-7, MaxIter: 100000,
			LB: aiac.DefaultLBPolicy(), Seed: int64(i),
			Metrics: &aiac.MetricsSink{},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// benchRealSolve runs one load-balanced AIAC solve on the real goroutine
// runtime, optionally with the live observability plane up and a client
// scraping /metrics + /healthz throughout the solve at a period chosen so
// every run sees several scrapes (Prometheus's production default is 15 s
// between scrapes; a busy-loop scraper would just measure CPU contention on
// single-core hosts). The ns/op gap between the off and on rows is the
// plane's overhead on a live run; the acceptance bound is <5%.
func benchRealSolve(b *testing.B, withHTTP bool) {
	params := aiac.BrusselatorParams(128, 0.02)
	params.T = 1
	prob := aiac.NewBrusselator(params)
	totalScrapes := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Server start/stop happens outside the timed section: the bound
		// under test is the plane's cost DURING a live run, not the one-off
		// listener setup.
		sink := &aiac.MetricsSink{}
		var srv *aiac.ObsServer
		stop := make(chan struct{})
		scraped := make(chan int)
		if withHTTP {
			var err error
			srv, err = aiac.ServeObs("127.0.0.1:0", sink)
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				n := 0
				client := &http.Client{Timeout: time.Second}
				tick := time.NewTicker(200 * time.Microsecond)
				defer tick.Stop()
				for {
					select {
					case <-stop:
						scraped <- n
						return
					case <-tick.C:
					}
					for _, path := range []string{"/metrics", "/healthz"} {
						resp, err := client.Get("http://" + srv.Addr() + path)
						if err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							n++
						}
					}
				}
			}()
		}
		b.StartTimer()
		res, err := aiac.Solve(aiac.Config{
			Mode: aiac.AIAC, P: 4, Problem: prob,
			Cluster: aiac.Homogeneous(4),
			Tol:     1e-7, MaxIter: 100000,
			LB: aiac.DefaultLBPolicy(), Seed: int64(i),
			Metrics: sink,
			Runner:  aiac.RealRunner(200), MaxTime: 3600,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
		b.StopTimer()
		if withHTTP {
			close(stop)
			n := <-scraped
			if n == 0 {
				b.Fatal("scraper never reached the observability plane")
			}
			totalScrapes += n
			if err := srv.Close(time.Second); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	if withHTTP {
		b.ReportMetric(float64(totalScrapes)/float64(b.N), "scrapes/op")
	}
}

// BenchmarkObservabilityPlane pins the cost of the -http live plane on a
// real-runtime solve: http=off is the baseline, http=on adds the server plus
// a continuous /metrics + /healthz scraper.
func BenchmarkObservabilityPlane(b *testing.B) {
	b.Run("http=off", func(b *testing.B) { benchRealSolve(b, false) })
	b.Run("http=on", func(b *testing.B) { benchRealSolve(b, true) })
}

// BenchmarkBandedFactorSolve measures the banded LU used by the sequential
// reference integrator (dimension 256, bandwidths 2). The matrix template
// is built once outside the timer; each iteration restores it with CopyFrom
// and re-factors, so the number measures the factor+solve kernel rather
// than NewBanded allocation and band filling.
func BenchmarkBandedFactorSolve(b *testing.B) {
	const n = 256
	template := linalg.NewBanded(n, 2, 2)
	rhs0 := make([]float64, n)
	for r := 0; r < n; r++ {
		template.Set(r, r, 8)
		for d := 1; d <= 2; d++ {
			if r >= d {
				template.Set(r, r-d, -1)
			}
			if r+d < n {
				template.Set(r, r+d, -1)
			}
		}
		rhs0[r] = float64(r % 7)
	}
	m := linalg.NewBanded(n, 2, 2)
	rhs := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CopyFrom(template)
		copy(rhs, rhs0)
		if err := m.Factor(); err != nil {
			b.Fatal(err)
		}
		m.Solve(rhs)
	}
}

// BenchmarkVirtualTimeMessaging measures the deterministic scheduler's
// event throughput (two processes exchanging 10k messages).
func BenchmarkVirtualTimeMessaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := runenv.Config{
			Delay: func(_, _, _ int, _ float64) float64 { return 1e-5 },
		}
		vtime.New(cfg).Run([]runenv.Body{
			func(env runenv.Env) {
				for k := 0; k < 10000; k++ {
					env.Send(1, k, nil, 64)
					if _, ok := env.RecvWait(); !ok {
						return
					}
				}
			},
			func(env runenv.Env) {
				for k := 0; k < 10000; k++ {
					if _, ok := env.RecvWait(); !ok {
						return
					}
					env.Send(0, k, nil, 64)
				}
			},
		})
	}
}

// BenchmarkFullHorizon regenerates the X7 windowed full-horizon experiment.
func BenchmarkFullHorizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.FullHorizon(experiments.Quick))
	}
}

// BenchmarkMapping regenerates the X8 logical-organization experiment.
func BenchmarkMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportShape(b, experiments.Mapping(experiments.Quick))
	}
}
