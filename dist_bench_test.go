package aiac_test

// BenchmarkDistTraceOverhead pins the cost of distributed tracing: the same
// loopback dist solve with Config.Trace off and on. The trace=on op adds
// per-event logging on every worker, the FrameTrace export at outcome time
// and the coordinator-side federation; the committed BENCH_7.json record
// documents the overhead on its num_cpu (compare the pair's ns/op — the
// tracing tax must stay under 5%), and `make bench-trace-dist` diffs a live
// run against it.

import (
	"fmt"
	"testing"
	"time"

	"aiac"
	"aiac/internal/dtime"
)

func BenchmarkDistTraceOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("trace=%v", traced), func(b *testing.B) {
			params := aiac.BrusselatorParams(64, 0.05)
			params.T = 1
			prob := aiac.NewBrusselator(params)
			for i := 0; i < b.N; i++ {
				// Lockstep mode: the iteration rate (and so the event rate)
				// is pinned by the barrier, not by how fast a free-running
				// async loop can spin on loopback — the honest baseline for
				// a per-event overhead claim. Speedup 1 (model time = wall
				// time) makes each sweep cost its real compute wall, as on
				// a production cluster; at high speedups the sweep collapses
				// to the loopback RTT and the fixed per-event logging and
				// export cost would be divided by an artificially tiny op.
				cfg := aiac.Config{
					Mode: aiac.SISC, P: 4, Problem: prob,
					Cluster: aiac.Homogeneous(4),
					Tol:     1e-7, MaxIter: 500000, MaxTime: 5000, Seed: 1,
				}
				if traced {
					cfg.Trace = &aiac.TraceLog{}
				}
				opts := aiac.DistOptions{
					Workers: 2,
					RunRoot: b.TempDir(),
					Speedup: 1,
					Spawn: dtime.GoroutineSpawner(func(w aiac.DistWorkerEnv) error {
						wcfg := cfg
						if traced {
							wcfg.Trace = &aiac.TraceLog{}
						}
						return aiac.SolveDistWorker(wcfg, w, aiac.DistWorkerOptions{Speedup: 1})
					}),
					HeartbeatTimeout: 10 * time.Second,
					Wall:             2 * time.Minute,
				}
				res, _, err := aiac.SolveDist(cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
				if traced && cfg.Trace.Len() == 0 {
					b.Fatal("traced solve produced no events")
				}
			}
		})
	}
}
