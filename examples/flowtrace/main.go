// Flowtrace renders the execution flows of the paper's Figures 1-4 as ASCII
// Gantt charts: SISC (idle gaps at every synchronous exchange), SIAC
// (partially overlapped sends), the general AIAC (no idle time), and the
// mutual-exclusion AIAC variant actually used by the paper (sends skipped
// while the previous one is in flight).
package main

import (
	"fmt"

	"aiac"
)

func main() {
	params := aiac.BrusselatorParams(16, 0.05)
	params.T = 0.5
	prob := aiac.NewBrusselator(params)

	// Two machines of different speeds on a slow link, like the sketches.
	cluster := aiac.Homogeneous(2)
	cluster.Nodes[1].Speed *= 0.55
	cluster.Intra = aiac.Link{Latency: 2e-3, Bandwidth: 2e6}

	figs := []struct {
		title string
		mode  aiac.Mode
	}{
		{"Figure 1 — SISC: synchronous iterations, synchronous communications", aiac.SISC},
		{"Figure 2 — SIAC: synchronous iterations, asynchronous communications", aiac.SIAC},
		{"Figure 3 — AIAC (general): fully asynchronous", aiac.AIACGeneral},
		{"Figure 4 — AIAC (variant): asynchronous with send mutual exclusion", aiac.AIAC},
	}
	for _, f := range figs {
		log := &aiac.TraceLog{}
		_, err := aiac.Solve(aiac.Config{
			Mode:       f.mode,
			P:          2,
			Problem:    prob,
			Cluster:    cluster,
			Tol:        1e-300, // unreachable: trace a fixed window
			MaxIter:    8,
			Trace:      log,
			TraceIters: 8,
			Seed:       3,
		})
		if err != nil {
			panic(err)
		}
		fmt.Println(f.title)
		fmt.Print(aiac.Gantt(log, aiac.GanttConfig{Width: 110, Arrows: true}))
		fmt.Println()
	}
}
