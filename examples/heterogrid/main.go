// Heterogrid reproduces the paper's Table-1 scenario interactively: the
// Brusselator solved by the asynchronous solver on fifteen heterogeneous
// machines spread over three sites (Belfort, Montbéliard, Grenoble) with
// multi-user background load — once without and once with the decentralized
// load balancing.
package main

import (
	"fmt"
	"log"

	"aiac"
)

func main() {
	params := aiac.BrusselatorParams(240, 0.005)
	params.T = 0.5
	prob := aiac.NewBrusselator(params)

	cluster := aiac.HeteroGrid15(aiac.HeteroGridConfig{Seed: 7, MultiUser: true})
	fmt.Println("platform: 15 machines over 3 sites")
	for i, n := range cluster.Nodes {
		fmt.Printf("  node %2d  %-16s speed %.2f\n", i, n.Name, n.Speed/1e6)
	}

	base := aiac.Config{
		Mode:    aiac.AIAC,
		P:       15,
		Problem: prob,
		Cluster: cluster,
		Tol:     1e-6,
		MaxIter: 200000,
		Seed:    3,
	}

	noLB, err := aiac.Solve(base)
	if err != nil {
		log.Fatal(err)
	}
	withLB := base
	withLB.LB = aiac.DefaultLBPolicy()
	balanced, err := aiac.Solve(withLB)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %-12s %-10s %s\n", "version", "time (s)", "converged", "final component split")
	fmt.Printf("%-14s %-12.2f %-10v %v\n", "non-balanced", noLB.Time, noLB.Converged, noLB.FinalCount)
	fmt.Printf("%-14s %-12.2f %-10v %v\n", "balanced", balanced.Time, balanced.Converged, balanced.FinalCount)
	fmt.Printf("\nratio: %.2fx — the balanced version sheds work from the slow,\n", noLB.Time/balanced.Time)
	fmt.Println("loaded machines toward the fast ones (compare the final splits")
	fmt.Println("against the speeds above), as in Table 1 of the paper.")
}
