// Heat demonstrates the framework's genericity (§5 of the paper: the AIAC
// scheme "can be adapted to every iterative processus"): the same engines
// that solve the nonlinear Brusselator run a linear 1-D heat equation —
// and, with trajectories of length one, a stationary Poisson solve.
package main

import (
	"fmt"
	"log"
	"math"

	"aiac"
)

func main() {
	// --- evolution problem: 1-D heat equation -------------------------
	hp := aiac.HeatParams(32, 0.002)
	heatProb := aiac.NewHeat(hp)

	res, err := aiac.Solve(aiac.Config{
		Mode:    aiac.AIAC,
		P:       4,
		Problem: heatProb,
		Cluster: aiac.Heterogeneous(4, 0.5, 11),
		Tol:     1e-10,
		MaxIter: 100000,
		LB:      aiac.DefaultLBPolicy(),
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	steps := hp.Steps()
	i := hp.N / 2
	got := res.State[i][steps]
	want := hp.ExactFirstMode(i+1, hp.T)
	fmt.Printf("heat equation on 4 heterogeneous nodes: converged=%v in %.4fs\n", res.Converged, res.Time)
	fmt.Printf("  midpoint temperature at T: %.6f (exact first-mode decay %.6f, err %.2g)\n",
		got, want, math.Abs(got-want))

	// --- stationary problem: Poisson via asynchronous Jacobi ----------
	pp := aiac.PoissonParams{N: 64}
	poissonProb := aiac.NewPoisson(pp)
	res2, err := aiac.Solve(aiac.Config{
		Mode:    aiac.AIAC,
		P:       4,
		Problem: poissonProb,
		Cluster: aiac.Homogeneous(4),
		Tol:     1e-12,
		MaxIter: 1000000,
		Seed:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for j := 0; j < pp.N; j++ {
		worst = math.Max(worst, math.Abs(res2.State[j][0]-pp.Exact(j+1)))
	}
	fmt.Printf("stationary Poisson via async Jacobi: converged=%v in %.4fs, max error vs exact %.2g\n",
		res2.Converged, res2.Time, worst)
}
