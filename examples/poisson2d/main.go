// Poisson2d solves the 2-D Poisson equation −Δu = f on the unit square by
// asynchronous Jacobi iteration with a row-block decomposition, using the
// fully decentralized ring convergence detector (no coordinator process at
// all) and the per-iteration history collector to show how components
// migrate between nodes under load balancing.
package main

import (
	"fmt"
	"log"
	"math"

	"aiac"
)

func main() {
	pp := aiac.Poisson2DParams{N: 48}
	prob := aiac.NewPoisson2D(pp)

	hist := &aiac.History{Stride: 25}
	res, err := aiac.Solve(aiac.Config{
		Mode:      aiac.AIAC,
		P:         6,
		Problem:   prob,
		Cluster:   aiac.Heterogeneous(6, 0.3, 17),
		Tol:       1e-9,
		MaxIter:   500000,
		Detection: aiac.DetectRing, // decentralized Safra-style detection
		LB:        aiac.DefaultLBPolicy(),
		History:   hist,
		Seed:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2-D Poisson (%dx%d grid) on 6 heterogeneous nodes\n", pp.N, pp.N)
	fmt.Printf("converged: %v in %.3f virtual seconds (ring detection, no coordinator)\n",
		res.Converged, res.Time)

	// accuracy against the manufactured exact solution sin(πx)sin(πy)
	worst := 0.0
	for i := 0; i < pp.N; i++ {
		for j := 0; j < pp.N; j++ {
			worst = math.Max(worst, math.Abs(res.State[i][j]-pp.Exact(i+1, j+1)))
		}
	}
	h := 1 / float64(pp.N+1)
	fmt.Printf("max error vs exact solution: %.3g (O(h²) bound ≈ %.3g)\n",
		worst, 2*math.Pi*math.Pi*h*h)

	// show the row migration the balancer performed
	fmt.Println("\nrow ownership over time (sampled every 25 iterations):")
	fmt.Printf("%8s", "node:")
	for r := range hist.ByNode {
		fmt.Printf("%6d", r)
	}
	fmt.Println()
	maxLen := 0
	for _, row := range hist.ByNode {
		if len(row) > maxLen {
			maxLen = len(row)
		}
	}
	for s := 0; s < maxLen; s += max(1, maxLen/8) {
		fmt.Printf("%7d ", s*25)
		for _, row := range hist.ByNode {
			if s < len(row) {
				fmt.Printf("%6d", row[s].Count)
			} else {
				fmt.Printf("%6s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Printf("%8s", "final:")
	for _, c := range res.FinalCount {
		fmt.Printf("%6d", c)
	}
	fmt.Println()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
