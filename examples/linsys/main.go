// Linsys solves an arbitrary banded, diagonally dominant sparse linear
// system A·x = b with the asynchronous solver — the paper's generic claim
// (§5: the AIAC scheme applies to "either linear or non-linear systems
// which can be stationary or not") made concrete: any such system becomes
// an engine Problem with halo = matrix bandwidth.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"aiac"
)

func main() {
	const n = 200
	rng := rand.New(rand.NewSource(42))

	// a random pentadiagonal, strictly diagonally dominant system
	b := aiac.NewSparseBuilder(n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		off := 0.0
		for d := 1; d <= 2; d++ {
			if i-d >= 0 {
				v := rng.NormFloat64()
				b.Set(i, i-d, v)
				off += math.Abs(v)
			}
			if i+d < n {
				v := rng.NormFloat64()
				b.Set(i, i+d, v)
				off += math.Abs(v)
			}
		}
		b.Set(i, i, off+1+rng.Float64()) // strictly dominant
		rhs[i] = rng.NormFloat64()
	}

	prob, err := aiac.NewLinSys(aiac.LinSysParams{A: b.Build(), B: rhs})
	if err != nil {
		log.Fatal(err)
	}

	res, err := aiac.Solve(aiac.Config{
		Mode:    aiac.AIAC,
		P:       8,
		Problem: prob,
		Cluster: aiac.Heterogeneous(8, 0.4, 9),
		Tol:     1e-12,
		MaxIter: 1000000,
		LB:      aiac.DefaultLBPolicy(),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("asynchronous Jacobi on a %d-unknown pentadiagonal system\n", n)
	fmt.Printf("converged: %v in %.3f virtual seconds (%d total iterations)\n",
		res.Converged, res.Time, res.TotalIters)
	fmt.Printf("final residual ‖b−Ax‖∞ = %.3g\n", prob.ResidualNorm(res.State))
	fmt.Printf("components migrated by the balancer: %d (final split %v)\n",
		res.LBCompsMoved, res.FinalCount)
}
