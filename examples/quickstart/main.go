// Quickstart: solve the paper's Brusselator problem with the load-balanced
// asynchronous solver (AIAC) on four virtual machines, then validate the
// parallel solution against a sequential full-system reference integration.
package main

import (
	"fmt"
	"log"
	"math"

	"aiac"
)

func main() {
	// The Brusselator reaction-diffusion system on 32 grid cells,
	// integrated over [0, 1] with implicit Euler steps of 0.02.
	params := aiac.BrusselatorParams(32, 0.02)
	params.T = 1
	prob := aiac.NewBrusselator(params)

	res, err := aiac.Solve(aiac.Config{
		Mode:    aiac.AIAC, // fully asynchronous iterations
		P:       4,
		Problem: prob,
		Cluster: aiac.Homogeneous(4),
		Tol:     1e-7,
		MaxIter: 100000,
		LB:      aiac.DefaultLBPolicy(), // residual-driven decentralized balancing
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v in %.4f virtual seconds\n", res.Converged, res.Time)
	fmt.Printf("node iterations: %v\n", res.NodeIters)
	fmt.Printf("load balancing: %d transfers, %d components moved, final split %v\n",
		res.LBTransfers, res.LBCompsMoved, res.FinalCount)

	// Validate against the sequential reference (implicit Euler + banded
	// Newton over the full coupled system).
	ref, _, err := aiac.BrusselatorReference(params)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for j := range ref {
		for i := range ref[j] {
			worst = math.Max(worst, math.Abs(res.State[j][i]-ref[j][i]))
		}
	}
	fmt.Printf("max deviation from sequential reference: %.3g\n", worst)

	// Show the oscillating reaction: concentration of u at the middle cell.
	mid := res.State[params.N/2]
	fmt.Println("\nu at the middle cell over time:")
	steps := params.Steps()
	for t := 0; t <= steps; t += steps / 10 {
		u := mid[2*t]
		bar := int(u * 20)
		fmt.Printf("  t=%4.2f  u=%.4f  %s\n", float64(t)*params.Dt, u, stars(bar))
	}
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
