module aiac

go 1.22
